// Repo linter enforcing AIrchitect project invariants (docs/static_analysis.md):
//
//   rand         no rand()/srand() — randomness must go through common/rng
//                so dataset generation stays bit-reproducible
//   cast         no C-style (float)/(double) casts — narrowing must be a
//                visible static_cast
//   new-delete   no naked new/delete — use containers / smart pointers
//   pragma-once  every header starts its life with #pragma once
//   cout         no std::cout in library code (src/); printing belongs to
//                tools, benches, examples and tests
//   unit-field   no raw arithmetic struct fields named *_pj / *_cycles /
//                *_bytes in library code — use the strong quantity types
//                from common/units.hpp (which itself is exempt)
//   value-escape no .value() unwrapping in library code outside the
//                sanctioned serialization/ML boundary (src/dataset/,
//                src/ml/, src/common/csv.*) — quantities leave the typed
//                world only where scalars are the contract
//   raw-thread   no std::thread in library code outside common/parallel.*
//                — concurrency goes through parallel_for/parallel_rows so
//                worker counts honor AIRCH_THREADS, chunking stays
//                deterministic, and exceptions propagate
//   raw-mutex    no std mutex/lock/condvar types (std::mutex,
//                std::shared_mutex, std::lock_guard, std::unique_lock,
//                std::scoped_lock, std::condition_variable, ...) in
//                library code outside common/sync.* — synchronization
//                goes through the annotated capability layer
//                (common/sync.hpp) so clang -Wthread-safety and the
//                checked-build lock-rank registry see every acquisition
//   raw-lock     no manual .lock()/.unlock()/.try_lock() calls in library
//                code outside common/sync.* — acquisition is RAII
//                (MutexLock / ReaderLock / WriterLock), so locks release
//                on every path including exceptions and the scoped
//                capability analysis stays sound
//
// A violation on one line can be waived with a trailing comment:
//     code;  // airch-lint: allow(rule)
// (comma-separated rule list; `allow(pragma-once)` anywhere in a header
// waives that file-level rule).
//
// Usage: lint_airch [--rules=a,b] [--machine] <repo_root>
//   --rules=a,b   report only the named rules (default: all)
//   --machine     one `file:line:rule` per finding — the format CI parses
//                 into per-line annotations — instead of prose
// Exit status 0 iff no violations — wired into CTest as `lint_airch`.

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

/// Comment/string stripper state carried across lines of one file.
struct StripState {
  bool in_block_comment = false;
  bool in_raw_string = false;
};

/// Returns `line` with comments and string/char literal contents blanked
/// out, so rule regexes never match inside them.
std::string strip_code(const std::string& line, StripState& st) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    if (st.in_block_comment) {
      if (line[i] == '*' && i + 1 < n && line[i + 1] == '/') {
        st.in_block_comment = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    if (st.in_raw_string) {  // only the common R"( ... )" delimiter is used here
      if (line[i] == ')' && i + 1 < n && line[i + 1] == '"') {
        st.in_raw_string = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < n && line[i + 1] == '/') break;  // line comment
    if (c == '/' && i + 1 < n && line[i + 1] == '*') {
      st.in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == 'R' && i + 2 < n && line[i + 1] == '"' && line[i + 2] == '(') {
      st.in_raw_string = true;
      out.push_back(' ');
      i += 3;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n) {
        if (line[i] == '\\') {
          i += 2;
        } else if (line[i] == quote) {
          ++i;
          break;
        } else {
          ++i;
        }
      }
      out.push_back(quote);  // keep a marker so tokens don't merge
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

/// Rules waived on this line via `airch-lint: allow(a, b)`.
std::set<std::string> allowed_rules(const std::string& raw_line) {
  std::set<std::string> out;
  const std::string tag = "airch-lint: allow(";
  const std::size_t at = raw_line.find(tag);
  if (at == std::string::npos) return out;
  std::size_t i = at + tag.size();
  std::string cur;
  while (i < raw_line.size() && raw_line[i] != ')') {
    const char c = raw_line[i++];
    if (c == ',') {
      if (!cur.empty()) out.insert(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.insert(cur);
  return out;
}

const std::regex kRandRe(R"((^|[^A-Za-z0-9_])(srand|rand)\s*\()");
const std::regex kCastRe(R"(\(\s*(float|double)\s*\)\s*([A-Za-z_][A-Za-z0-9_]*|\(|[0-9][0-9a-fA-FxX.']*))");
const std::regex kNewDeleteRe(R"((^|[^A-Za-z0-9_])(new|delete)($|[^A-Za-z0-9_]))");
const std::regex kCoutRe(R"(std\s*::\s*cout)");
const std::regex kUnitFieldRe(
    R"(^\s*(?:std\s*::\s*)?(?:double|float|u?int(?:8|16|32|64)?_t|int|long|unsigned|std::size_t|size_t)(?:\s+(?:long|int))*\s+([A-Za-z0-9_]*_(?:pj|cycles|bytes))\s*(?:[;={]|$))");
const std::regex kValueEscapeRe(R"(\.\s*value\s*\(\s*\))");
const std::regex kRawThreadRe(R"(std\s*::\s*(thread|jthread)($|[^A-Za-z0-9_]))");
// Longest-first alternation so e.g. condition_variable_any never half-matches.
const std::regex kRawMutexRe(
    R"(std\s*::\s*(condition_variable_any|condition_variable|recursive_timed_mutex|recursive_mutex|shared_timed_mutex|timed_mutex|shared_mutex|mutex|scoped_lock|shared_lock|lock_guard|unique_lock)($|[^A-Za-z0-9_]))");
const std::regex kRawLockRe(
    R"((\.|->)\s*(try_lock_shared|try_lock|lock_shared|unlock_shared|unlock|lock)\s*\()");

// Tokens that legally follow a parenthesized type in a declaration, e.g.
// `double f(double) const;` — not casts.
bool is_decl_suffix(const std::string& tok) {
  return tok == "const" || tok == "noexcept" || tok == "override" || tok == "final" ||
         tok == "throw" || tok == "delete" || tok == "default";
}

/// Per-file lint context derived from the repo-relative path.
struct FileContext {
  bool is_library_code = false;  ///< under src/ — stricter rules apply
  bool units_header = false;     ///< src/common/units.hpp — defines the types
  bool boundary_code = false;    ///< sanctioned scalar boundary (dataset/ml/csv)
  bool thread_impl = false;      ///< src/common/parallel.* — owns the threads
  bool sync_impl = false;        ///< src/common/sync.* — wraps the std primitives
};

void lint_file(const fs::path& path, const FileContext& ctx, std::vector<Finding>& findings) {
  const bool is_library_code = ctx.is_library_code;
  std::ifstream in(path);
  if (!in) {
    findings.push_back({path.string(), 0, "io", "cannot open file"});
    return;
  }
  const bool is_header = path.extension() == ".hpp";
  bool saw_pragma_once = false;
  bool pragma_once_waived = false;

  StripState st;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::set<std::string> allow = allowed_rules(raw);
    if (allow.count("pragma-once")) pragma_once_waived = true;
    const std::string code = strip_code(raw, st);
    if (code.find("#pragma once") != std::string::npos) saw_pragma_once = true;

    std::smatch m;
    if (!allow.count("rand") && std::regex_search(code, m, kRandRe)) {
      findings.push_back({path.string(), lineno, "rand",
                          "use airch::Rng (common/rng.hpp) instead of " + m[2].str() + "()"});
    }
    if (!allow.count("cast") && std::regex_search(code, m, kCastRe) &&
        !is_decl_suffix(m[2].str())) {
      findings.push_back({path.string(), lineno, "cast",
                          "C-style (" + m[1].str() + ") cast — write static_cast<" +
                              m[1].str() + ">(...) so narrowing is visible"});
    }
    if (!allow.count("new-delete") && std::regex_search(code, m, kNewDeleteRe)) {
      // `= delete`d functions are declarations, not deallocations.
      const std::string prefix = m.prefix().str();
      const std::size_t last = prefix.find_last_not_of(" \t");
      const bool deleted_fn = m[2].str() == "delete" && last != std::string::npos &&
                              prefix[last] == '=';
      if (!deleted_fn) {
        findings.push_back({path.string(), lineno, "new-delete",
                            "naked " + m[2].str() +
                                " — use std::vector / std::make_unique instead"});
      }
    }
    if (is_library_code && !allow.count("cout") && std::regex_search(code, m, kCoutRe)) {
      findings.push_back({path.string(), lineno, "cout",
                          "std::cout in library code — return data or take an std::ostream&"});
    }
    if (is_library_code && !ctx.units_header && !allow.count("unit-field") &&
        std::regex_search(code, m, kUnitFieldRe)) {
      findings.push_back({path.string(), lineno, "unit-field",
                          "raw arithmetic field '" + m[1].str() +
                              "' — use the strong type from common/units.hpp"});
    }
    if (is_library_code && !ctx.units_header && !ctx.boundary_code &&
        !allow.count("value-escape") && std::regex_search(code, m, kValueEscapeRe)) {
      findings.push_back({path.string(), lineno, "value-escape",
                          ".value() outside the serialization/ML boundary — keep the "
                          "quantity typed or justify with an allow comment"});
    }
    if (is_library_code && !ctx.thread_impl && !allow.count("raw-thread") &&
        std::regex_search(code, m, kRawThreadRe)) {
      findings.push_back({path.string(), lineno, "raw-thread",
                          "raw std::" + m[1].str() +
                              " in library code — use parallel_for/parallel_rows "
                              "(common/parallel.hpp) so AIRCH_THREADS and deterministic "
                              "chunking apply"});
    }
    if (is_library_code && !ctx.sync_impl && !allow.count("raw-mutex") &&
        std::regex_search(code, m, kRawMutexRe)) {
      findings.push_back({path.string(), lineno, "raw-mutex",
                          "raw std::" + m[1].str() +
                              " in library code — use the annotated layer in "
                              "common/sync.hpp (Mutex/MutexLock/CondVar) so thread-safety "
                              "analysis and the lock-rank registry apply"});
    }
    if (is_library_code && !ctx.sync_impl && !allow.count("raw-lock") &&
        std::regex_search(code, m, kRawLockRe)) {
      findings.push_back({path.string(), lineno, "raw-lock",
                          "manual ." + m[2].str() +
                              "() in library code — hold locks via RAII "
                              "(MutexLock/ReaderLock/WriterLock, common/sync.hpp)"});
    }
  }
  if (is_header && !saw_pragma_once && !pragma_once_waived) {
    findings.push_back({path.string(), 1, "pragma-once", "header is missing #pragma once"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool machine = false;
  std::set<std::string> only_rules;  // empty = all rules
  std::string root_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--machine") {
      machine = true;
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::string cur;
      for (std::size_t j = 8; j <= arg.size(); ++j) {
        if (j == arg.size() || arg[j] == ',') {
          if (!cur.empty()) only_rules.insert(cur);
          cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(arg[j]))) {
          cur.push_back(arg[j]);
        }
      }
    } else if (!arg.empty() && arg[0] != '-' && root_arg.empty()) {
      root_arg = arg;
    } else {
      std::cerr << "usage: lint_airch [--rules=a,b] [--machine] <repo_root>\n";
      return 2;
    }
  }
  if (root_arg.empty()) {
    std::cerr << "usage: lint_airch [--rules=a,b] [--machine] <repo_root>\n";
    return 2;
  }
  const fs::path root = root_arg;
  const std::vector<std::string> dirs = {"src", "tests", "tools", "bench", "examples"};

  std::vector<Finding> findings;
  std::size_t files = 0;
  for (const auto& dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      // Never lint generated trees (in-source build leftovers).
      if (entry.path().string().find("CMakeFiles") != std::string::npos) continue;
      ++files;
      const std::string rel = fs::relative(entry.path(), root).generic_string();
      FileContext ctx;
      ctx.is_library_code = dir == "src";
      ctx.units_header = rel == "src/common/units.hpp";
      ctx.boundary_code = rel.rfind("src/dataset/", 0) == 0 || rel.rfind("src/ml/", 0) == 0 ||
                          rel.rfind("src/common/csv", 0) == 0;
      ctx.thread_impl = rel.rfind("src/common/parallel", 0) == 0;
      ctx.sync_impl = rel.rfind("src/common/sync", 0) == 0;
      lint_file(entry.path(), ctx, findings);
    }
  }

  // Zero files scanned means a typo'd root, which must not pass the gate.
  if (files == 0) {
    std::cerr << "lint_airch: no .cpp/.hpp sources under " << root << " — is that the repo root?\n";
    return 2;
  }

  // --rules filter applies at report time ("io" stays: an unreadable file
  // must never pass the gate regardless of the rule selection).
  if (!only_rules.empty()) {
    std::erase_if(findings, [&only_rules](const Finding& f) {
      return f.rule != "io" && !only_rules.count(f.rule);
    });
  }

  if (machine) {
    // One parseable line per finding; no summary chatter on this channel.
    for (const auto& f : findings) {
      std::cout << f.file << ':' << f.line << ':' << f.rule << '\n';
    }
    return findings.empty() ? 0 : 1;
  }

  for (const auto& f : findings) {
    std::cout << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message << '\n';
  }
  if (findings.empty()) {
    std::cout << "lint_airch: " << files << " files clean\n";
    return 0;
  }
  std::cout << "lint_airch: " << findings.size() << " violation(s) in " << files << " files\n";
  return 1;
}
