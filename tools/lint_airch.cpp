// Repo linter enforcing AIrchitect project invariants (docs/static_analysis.md).
// Line-level rules over src/, tests/, tools/, bench/, examples/; the
// architecture-level rules (layering, include cycles, [[nodiscard]]
// contracts) live in the sibling analyzer tools/arch_check.cpp. Both are
// built on the shared scanning core in tools/analysis/.
//
// Run `lint_airch --explain <rule>` for any rule's rationale and waiver
// syntax; the full catalog is the table in docs/static_analysis.md.
//
// A violation on one line can be waived with a trailing comment:
//     code;  // airch-lint: allow(rule)
// (comma-separated rule list; `allow(pragma-once)` anywhere in a header
// waives that file-level rule).
//
// Usage: lint_airch [--rules=a,b] [--machine] [--explain <rule>] <repo_root>
//   --rules=a,b      report only the named rules (default: all)
//   --machine        one `file:line:col:rule` per finding — the format CI
//                    parses into per-line annotations — instead of prose
//   --explain <rule> print the rule's rationale + waiver syntax and exit
// Exit status 0 iff no violations — wired into CTest as `lint_airch`.

#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis/driver.hpp"
#include "analysis/scan.hpp"

namespace {

using airch::analysis::Finding;
using airch::analysis::RuleInfo;

const std::vector<RuleInfo> kRules = {
    {"rand", "calls to rand()/srand()",
     "randomness must go through airch::Rng (common/rng.hpp) so dataset generation stays "
     "bit-reproducible across platforms and runs",
     "// airch-lint: allow(rand)"},
    {"cast", "C-style (float)/(double) casts",
     "narrowing must be a visible static_cast so -Wconversion and review can see it",
     "// airch-lint: allow(cast)"},
    {"new-delete", "naked new/delete expressions",
     "ownership goes through containers and std::make_unique; `= delete`d functions are exempt",
     "// airch-lint: allow(new-delete)"},
    {"pragma-once", "headers without #pragma once",
     "every header must be include-guarded the same way; double inclusion is a build-order bug",
     "// airch-lint: allow(pragma-once) anywhere in the header"},
    {"cout", "std::cout in library code (src/)",
     "libraries return data or take an std::ostream&; printing belongs to tools, benches, "
     "examples and tests",
     "// airch-lint: allow(cout)"},
    {"unit-field", "raw arithmetic struct fields named *_pj / *_cycles / *_bytes in src/",
     "costs are strong quantity types (common/units.hpp) so unit mix-ups fail to compile; "
     "units.hpp itself is exempt",
     "// airch-lint: allow(unit-field)"},
    {"value-escape", ".value() unwrapping in src/ outside src/dataset|src/ml|src/common/csv",
     "quantities leave the typed world only where scalars are the contract (serialization, "
     "ML feature encoding)",
     "// airch-lint: allow(value-escape)"},
    {"raw-thread", "std::thread/std::jthread in src/ outside common/parallel.*",
     "concurrency goes through parallel_for/parallel_rows so worker counts honor "
     "AIRCH_THREADS, chunking stays deterministic, and exceptions propagate",
     "// airch-lint: allow(raw-thread)"},
    {"raw-mutex", "std mutex/lock/condvar types in src/ outside common/sync.*",
     "synchronization goes through the annotated capability layer (common/sync.hpp) so clang "
     "-Wthread-safety and the checked-build lock-rank registry see every acquisition",
     "// airch-lint: allow(raw-mutex)"},
    {"raw-lock", "manual .lock()/.unlock()/.try_lock() calls in src/ outside common/sync.*",
     "acquisition is RAII (MutexLock/ReaderLock/WriterLock) so locks release on every path "
     "including exceptions and the scoped capability analysis stays sound",
     "// airch-lint: allow(raw-lock)"},
};

const std::regex kRandRe(R"((^|[^A-Za-z0-9_])(srand|rand)\s*\()");
const std::regex kCastRe(R"(\(\s*(float|double)\s*\)\s*([A-Za-z_][A-Za-z0-9_]*|\(|[0-9][0-9a-fA-FxX.']*))");
const std::regex kNewDeleteRe(R"((^|[^A-Za-z0-9_])(new|delete)($|[^A-Za-z0-9_]))");
const std::regex kCoutRe(R"(std\s*::\s*cout)");
const std::regex kUnitFieldRe(
    R"(^\s*(?:std\s*::\s*)?(?:double|float|u?int(?:8|16|32|64)?_t|int|long|unsigned|std::size_t|size_t)(?:\s+(?:long|int))*\s+([A-Za-z0-9_]*_(?:pj|cycles|bytes))\s*(?:[;={]|$))");
const std::regex kValueEscapeRe(R"(\.\s*value\s*\(\s*\))");
const std::regex kRawThreadRe(R"(std\s*::\s*(thread|jthread)($|[^A-Za-z0-9_]))");
// Longest-first alternation so e.g. condition_variable_any never half-matches.
const std::regex kRawMutexRe(
    R"(std\s*::\s*(condition_variable_any|condition_variable|recursive_timed_mutex|recursive_mutex|shared_timed_mutex|timed_mutex|shared_mutex|mutex|scoped_lock|shared_lock|lock_guard|unique_lock)($|[^A-Za-z0-9_]))");
const std::regex kRawLockRe(
    R"((\.|->)\s*(try_lock_shared|try_lock|lock_shared|unlock_shared|unlock|lock)\s*\()");

// Tokens that legally follow a parenthesized type in a declaration, e.g.
// `double f(double) const;` — not casts.
bool is_decl_suffix(const std::string& tok) {
  return tok == "const" || tok == "noexcept" || tok == "override" || tok == "final" ||
         tok == "throw" || tok == "delete" || tok == "default";
}

/// Per-file lint context derived from the repo-relative path.
struct FileContext {
  bool is_library_code = false;  ///< under src/ — stricter rules apply
  bool units_header = false;     ///< src/common/units.hpp — defines the types
  bool boundary_code = false;    ///< sanctioned scalar boundary (dataset/ml/csv)
  bool thread_impl = false;      ///< src/common/parallel.* — owns the threads
  bool sync_impl = false;        ///< src/common/sync.* — wraps the std primitives
};

/// 1-based column of submatch `group` in a match against a stripped line
/// (strip_code preserves positions, so this is the raw-line column too).
std::size_t col_of(const std::smatch& m, int group = 0) {
  return static_cast<std::size_t>(m.position(group)) + 1;
}

void lint_file(const std::filesystem::path& path, const FileContext& ctx,
               std::vector<Finding>& findings) {
  const bool is_library_code = ctx.is_library_code;
  std::ifstream in(path);
  if (!in) {
    findings.push_back({path.string(), 0, 1, "io", "cannot open file"});
    return;
  }
  const bool is_header = path.extension() == ".hpp";
  bool saw_pragma_once = false;
  bool pragma_once_waived = false;

  airch::analysis::StripState st;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::set<std::string> allow = airch::analysis::allowed_rules(raw);
    if (allow.count("pragma-once")) pragma_once_waived = true;
    const std::string code = airch::analysis::strip_code(raw, st);
    if (code.find("#pragma once") != std::string::npos) saw_pragma_once = true;

    std::smatch m;
    if (!allow.count("rand") && std::regex_search(code, m, kRandRe)) {
      findings.push_back({path.string(), lineno, col_of(m, 2), "rand",
                          "use airch::Rng (common/rng.hpp) instead of " + m[2].str() + "()"});
    }
    if (!allow.count("cast") && std::regex_search(code, m, kCastRe) &&
        !is_decl_suffix(m[2].str())) {
      findings.push_back({path.string(), lineno, col_of(m), "cast",
                          "C-style (" + m[1].str() + ") cast — write static_cast<" +
                              m[1].str() + ">(...) so narrowing is visible"});
    }
    if (!allow.count("new-delete") && std::regex_search(code, m, kNewDeleteRe)) {
      // `= delete`d functions are declarations, not deallocations.
      const std::string prefix = m.prefix().str();
      const std::size_t last = prefix.find_last_not_of(" \t");
      const bool deleted_fn = m[2].str() == "delete" && last != std::string::npos &&
                              prefix[last] == '=';
      if (!deleted_fn) {
        findings.push_back({path.string(), lineno, col_of(m, 2), "new-delete",
                            "naked " + m[2].str() +
                                " — use std::vector / std::make_unique instead"});
      }
    }
    if (is_library_code && !allow.count("cout") && std::regex_search(code, m, kCoutRe)) {
      findings.push_back({path.string(), lineno, col_of(m), "cout",
                          "std::cout in library code — return data or take an std::ostream&"});
    }
    if (is_library_code && !ctx.units_header && !allow.count("unit-field") &&
        std::regex_search(code, m, kUnitFieldRe)) {
      findings.push_back({path.string(), lineno, col_of(m, 1), "unit-field",
                          "raw arithmetic field '" + m[1].str() +
                              "' — use the strong type from common/units.hpp"});
    }
    if (is_library_code && !ctx.units_header && !ctx.boundary_code &&
        !allow.count("value-escape") && std::regex_search(code, m, kValueEscapeRe)) {
      findings.push_back({path.string(), lineno, col_of(m), "value-escape",
                          ".value() outside the serialization/ML boundary — keep the "
                          "quantity typed or justify with an allow comment"});
    }
    if (is_library_code && !ctx.thread_impl && !allow.count("raw-thread") &&
        std::regex_search(code, m, kRawThreadRe)) {
      findings.push_back({path.string(), lineno, col_of(m), "raw-thread",
                          "raw std::" + m[1].str() +
                              " in library code — use parallel_for/parallel_rows "
                              "(common/parallel.hpp) so AIRCH_THREADS and deterministic "
                              "chunking apply"});
    }
    if (is_library_code && !ctx.sync_impl && !allow.count("raw-mutex") &&
        std::regex_search(code, m, kRawMutexRe)) {
      findings.push_back({path.string(), lineno, col_of(m), "raw-mutex",
                          "raw std::" + m[1].str() +
                              " in library code — use the annotated layer in "
                              "common/sync.hpp (Mutex/MutexLock/CondVar) so thread-safety "
                              "analysis and the lock-rank registry apply"});
    }
    if (is_library_code && !ctx.sync_impl && !allow.count("raw-lock") &&
        std::regex_search(code, m, kRawLockRe)) {
      findings.push_back({path.string(), lineno, col_of(m, 2), "raw-lock",
                          "manual ." + m[2].str() +
                              "() in library code — hold locks via RAII "
                              "(MutexLock/ReaderLock/WriterLock, common/sync.hpp)"});
    }
  }
  if (is_header && !saw_pragma_once && !pragma_once_waived) {
    findings.push_back({path.string(), 1, 1, "pragma-once", "header is missing #pragma once"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: lint_airch [--rules=a,b] [--machine] [--explain <rule>] <repo_root>\n";
  airch::analysis::DriverOptions opts;
  if (!airch::analysis::parse_driver_args(argc, argv, opts, usage)) return 2;
  if (!opts.extra.empty()) {
    std::cerr << "unknown flag " << opts.extra.front() << "\n" << usage;
    return 2;
  }
  if (!opts.explain_rule.empty()) {
    return airch::analysis::run_explain(kRules, opts.explain_rule, std::cout);
  }

  const std::filesystem::path root = opts.root;
  const auto sources = airch::analysis::walk_sources(
      root, {"src", "tests", "tools", "bench", "examples"});

  std::vector<Finding> findings;
  for (const auto& src : sources) {
    FileContext ctx;
    ctx.is_library_code = src.top_dir == "src";
    ctx.units_header = src.rel == "src/common/units.hpp";
    ctx.boundary_code = src.rel.rfind("src/dataset/", 0) == 0 ||
                        src.rel.rfind("src/ml/", 0) == 0 ||
                        src.rel.rfind("src/common/csv", 0) == 0;
    ctx.thread_impl = src.rel.rfind("src/common/parallel", 0) == 0;
    ctx.sync_impl = src.rel.rfind("src/common/sync", 0) == 0;
    lint_file(src.path, ctx, findings);
  }

  // Zero files scanned means a typo'd root, which must not pass the gate.
  if (sources.empty()) {
    std::cerr << "lint_airch: no .cpp/.hpp sources under " << root << " — is that the repo root?\n";
    return 2;
  }

  airch::analysis::filter_findings(findings, opts.only_rules);
  return airch::analysis::report(findings, opts.machine, "lint_airch", sources.size(),
                                 std::cout);
}
