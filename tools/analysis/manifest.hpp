#pragma once
// Layer manifest for the architecture-conformance analyzer
// (tools/arch_check.cpp). The manifest — docs/layers.toml in this repo —
// declares the layer DAG once: each layer owns a directory subtree and
// lists the layers it may include from. arch_check turns every edge not
// declared here into a finding, so the architecture document and the
// enforced architecture are the same file.
//
// The parser accepts the TOML subset the manifest actually uses:
//
//   [layer.<name>]                # one table per layer, in DAG order
//   path = "src/<dir>"            # directory subtree this layer owns
//   deps = ["a", "b"]             # layers it may include from (single line)
//   private = ["src/x/y.hpp"]     # headers only this layer may include
//
// plus blank lines and `#` comments. Anything else is a parse error —
// the manifest is part of the gate, so silent misreads are not allowed.

#include <filesystem>
#include <string>
#include <vector>

namespace airch::analysis {

struct Layer {
  std::string name;
  std::string path;                          ///< repo-relative subtree prefix
  std::vector<std::string> deps;             ///< layer names this may include from
  std::vector<std::string> private_headers;  ///< repo-relative, intra-layer only
};

struct LayerManifest {
  std::vector<Layer> layers;  ///< in file order (bottom of the DAG first)

  /// Layer owning `rel` (repo-relative generic path) by longest matching
  /// `path` prefix, or nullptr when no layer covers it.
  const Layer* layer_of(const std::string& rel) const;

  /// True iff `rel` is declared layer-private (by any layer).
  bool is_private(const std::string& rel) const;
};

/// Parses the manifest. Throws std::runtime_error with file:line context
/// on any line the subset grammar does not cover.
LayerManifest load_manifest(const std::filesystem::path& file);

}  // namespace airch::analysis
