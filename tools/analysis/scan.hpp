#pragma once
// Shared scanning core for the repo analyzers (tools/lint_airch.cpp and
// tools/arch_check.cpp): source-tree walking, comment/string stripping,
// and the `// airch-lint: allow(rule)` suppression parser. Both tools see
// source text through this layer so a waiver, a commented-out include, or
// a string literal is interpreted identically by every rule.

#include <cstddef>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <vector>

namespace airch::analysis {

/// One analyzer finding. `col` is 1-based; rules that flag a whole file
/// (e.g. a missing #pragma once) use line 1, col 1.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 1;
  std::string rule;
  std::string message;
};

/// Comment/string stripper state carried across lines of one file.
struct StripState {
  bool in_block_comment = false;
  bool in_raw_string = false;
};

/// Returns `line` with comments and string/char literal contents blanked
/// out — every erased character is replaced in place, so column positions
/// in the returned string match the raw line — and rule regexes never
/// match inside comments or literals.
std::string strip_code(const std::string& line, StripState& st);

/// Rules waived on this line via `airch-lint: allow(a, b)`.
std::set<std::string> allowed_rules(const std::string& raw_line);

/// A source file discovered by walk_sources.
struct SourceFile {
  std::filesystem::path path;  ///< absolute (as walked)
  std::string rel;             ///< generic path relative to the walk root
  std::string top_dir;         ///< first component of rel ("src", "tools", ...)
};

/// Walks `root/<dir>` for each dir, collecting .cpp/.hpp files and skipping
/// generated trees (CMakeFiles). Returns files sorted by `rel` so analyzer
/// output is deterministic across filesystems.
std::vector<SourceFile> walk_sources(const std::filesystem::path& root,
                                     const std::vector<std::string>& dirs);

}  // namespace airch::analysis
