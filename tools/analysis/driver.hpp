#pragma once
// Shared command-line driver for the repo analyzers: `--rules=a,b` /
// `--machine` / `--explain <rule>` plumbing and the two report formats.
// Keeping this in one place means lint_airch and arch_check cannot drift:
// CI parses the identical `file:line:col:rule` machine format from both.

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "analysis/scan.hpp"

namespace airch::analysis {

/// Catalog entry for one rule: what it catches, why it exists, and how a
/// justified violation is waived. Printed verbatim by `--explain <rule>`
/// and mirrored in the docs/static_analysis.md rule catalog.
struct RuleInfo {
  std::string name;
  std::string what;       ///< one line: the pattern the rule rejects
  std::string rationale;  ///< why the invariant matters for this repo
  std::string waiver;     ///< the exact comment / manifest form that waives it
};

/// Parsed analyzer command line. Tool-specific flags (e.g. arch_check's
/// --manifest=) are returned in `extra` for the caller to interpret.
struct DriverOptions {
  bool machine = false;
  std::set<std::string> only_rules;  ///< empty = all rules
  std::string explain_rule;          ///< non-empty: print catalog entry and exit
  std::string root;
  std::vector<std::string> extra;    ///< unrecognized --flags, in order
};

/// Parses argv. Returns false (and prints `usage` to stderr) on a malformed
/// command line; `--explain` consumes the following argument.
bool parse_driver_args(int argc, char** argv, DriverOptions& opts, const std::string& usage);

/// Handles `--explain <rule>`: prints the catalog entry (or an error with
/// the known-rule list) and returns the process exit code. Only call when
/// opts.explain_rule is non-empty.
int run_explain(const std::vector<RuleInfo>& rules, const std::string& rule_name,
                std::ostream& os);

/// Drops findings whose rule is not in `only_rules` (no-op when empty).
/// "io" findings always survive: an unreadable file must never pass the
/// gate regardless of the rule selection.
void filter_findings(std::vector<Finding>& findings, const std::set<std::string>& only_rules);

/// Prints findings and returns the process exit code (0 iff none).
/// Machine format is one `file:line:col:rule` per line with no summary
/// chatter; prose format appends `tool: N violation(s) in M files`.
int report(const std::vector<Finding>& findings, bool machine, const std::string& tool,
           std::size_t files_scanned, std::ostream& os);

}  // namespace airch::analysis
