#include "analysis/manifest.hpp"

#include <cctype>
#include <fstream>
#include <stdexcept>

namespace airch::analysis {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void fail(const std::filesystem::path& file, std::size_t line,
                       const std::string& why) {
  throw std::runtime_error(file.string() + ":" + std::to_string(line) +
                           ": manifest parse error: " + why);
}

/// Parses `"quoted"` starting at s[i]; advances i past the closing quote.
std::string parse_string(const std::string& s, std::size_t& i, const std::filesystem::path& file,
                         std::size_t lineno) {
  if (i >= s.size() || s[i] != '"') fail(file, lineno, "expected '\"'");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') out.push_back(s[i++]);
  if (i >= s.size()) fail(file, lineno, "unterminated string");
  ++i;  // closing quote
  return out;
}

/// Parses a single-line `["a", "b"]` array of strings.
std::vector<std::string> parse_array(const std::string& s, const std::filesystem::path& file,
                                     std::size_t lineno) {
  std::vector<std::string> out;
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  };
  skip_ws();
  if (i >= s.size() || s[i] != '[') fail(file, lineno, "expected '['");
  ++i;
  skip_ws();
  while (i < s.size() && s[i] != ']') {
    out.push_back(parse_string(s, i, file, lineno));
    skip_ws();
    if (i < s.size() && s[i] == ',') {
      ++i;
      skip_ws();
    }
  }
  if (i >= s.size()) fail(file, lineno, "unterminated array");
  ++i;  // ']'
  skip_ws();
  if (i != s.size()) fail(file, lineno, "trailing characters after array");
  return out;
}

}  // namespace

const Layer* LayerManifest::layer_of(const std::string& rel) const {
  const Layer* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& layer : layers) {
    const std::string prefix = layer.path + "/";
    if (rel.rfind(prefix, 0) == 0 && prefix.size() > best_len) {
      best = &layer;
      best_len = prefix.size();
    }
  }
  return best;
}

bool LayerManifest::is_private(const std::string& rel) const {
  for (const auto& layer : layers) {
    for (const auto& h : layer.private_headers) {
      if (h == rel) return true;
    }
  }
  return false;
}

LayerManifest load_manifest(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("cannot open manifest " + file.string());

  LayerManifest m;
  Layer* cur = nullptr;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments; the manifest never embeds '#' in strings.
    const std::size_t hash = raw.find('#');
    const std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail(file, lineno, "unterminated table header");
      const std::string section = line.substr(1, line.size() - 2);
      const std::string prefix = "layer.";
      if (section.rfind(prefix, 0) != 0 || section.size() == prefix.size()) {
        fail(file, lineno, "expected [layer.<name>], got [" + section + "]");
      }
      const std::string name = section.substr(prefix.size());
      for (const auto& existing : m.layers) {
        if (existing.name == name) fail(file, lineno, "duplicate layer '" + name + "'");
      }
      m.layers.push_back(Layer{name, "", {}, {}});
      cur = &m.layers.back();
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(file, lineno, "expected key = value");
    if (cur == nullptr) fail(file, lineno, "key outside a [layer.*] table");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "path") {
      std::size_t i = 0;
      cur->path = parse_string(value, i, file, lineno);
      if (i != value.size()) fail(file, lineno, "trailing characters after path");
      if (cur->path.empty() || cur->path.back() == '/') {
        fail(file, lineno, "path must be a non-empty prefix without trailing '/'");
      }
    } else if (key == "deps") {
      cur->deps = parse_array(value, file, lineno);
    } else if (key == "private") {
      cur->private_headers = parse_array(value, file, lineno);
    } else {
      fail(file, lineno, "unknown key '" + key + "'");
    }
  }

  // Validate: every layer has a path; every dep names an EARLIER layer, so
  // the manifest itself cannot declare a cyclic (or self-referential) DAG.
  for (std::size_t i = 0; i < m.layers.size(); ++i) {
    const Layer& layer = m.layers[i];
    if (layer.path.empty()) {
      throw std::runtime_error(file.string() + ": layer '" + layer.name + "' has no path");
    }
    for (const auto& dep : layer.deps) {
      bool found = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (m.layers[j].name == dep) {
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::runtime_error(file.string() + ": layer '" + layer.name + "' dep '" + dep +
                                 "' is not an earlier layer — declare layers bottom-up so "
                                 "the manifest is a DAG by construction");
      }
    }
  }
  if (m.layers.empty()) throw std::runtime_error(file.string() + ": no layers declared");
  return m;
}

}  // namespace airch::analysis
