#include "analysis/driver.hpp"

#include <cctype>
#include <iostream>
#include <ostream>

namespace airch::analysis {

bool parse_driver_args(int argc, char** argv, DriverOptions& opts, const std::string& usage) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--machine") {
      opts.machine = true;
    } else if (arg == "--explain") {
      if (i + 1 >= argc) {
        std::cerr << "--explain needs a rule name\n" << usage;
        return false;
      }
      opts.explain_rule = argv[++i];
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::string cur;
      for (std::size_t j = 8; j <= arg.size(); ++j) {
        if (j == arg.size() || arg[j] == ',') {
          if (!cur.empty()) opts.only_rules.insert(cur);
          cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(arg[j]))) {
          cur.push_back(arg[j]);
        }
      }
    } else if (!arg.empty() && arg[0] == '-') {
      opts.extra.push_back(arg);  // tool-specific flag; caller validates
    } else if (opts.root.empty()) {
      opts.root = arg;
    } else {
      std::cerr << usage;
      return false;
    }
  }
  if (opts.root.empty() && opts.explain_rule.empty()) {
    std::cerr << usage;
    return false;
  }
  return true;
}

int run_explain(const std::vector<RuleInfo>& rules, const std::string& rule_name,
                std::ostream& os) {
  for (const auto& r : rules) {
    if (r.name != rule_name) continue;
    os << r.name << "\n"
       << "  catches:   " << r.what << "\n"
       << "  rationale: " << r.rationale << "\n"
       << "  waiver:    " << r.waiver << "\n";
    return 0;
  }
  os << "unknown rule '" << rule_name << "'; known rules:";
  for (const auto& r : rules) os << ' ' << r.name;
  os << '\n';
  return 2;
}

void filter_findings(std::vector<Finding>& findings, const std::set<std::string>& only_rules) {
  if (only_rules.empty()) return;
  std::erase_if(findings, [&only_rules](const Finding& f) {
    return f.rule != "io" && !only_rules.count(f.rule);
  });
}

int report(const std::vector<Finding>& findings, bool machine, const std::string& tool,
           std::size_t files_scanned, std::ostream& os) {
  if (machine) {
    // One parseable line per finding; no summary chatter on this channel.
    for (const auto& f : findings) {
      os << f.file << ':' << f.line << ':' << f.col << ':' << f.rule << '\n';
    }
    return findings.empty() ? 0 : 1;
  }
  for (const auto& f : findings) {
    os << f.file << ':' << f.line << ':' << f.col << ": [" << f.rule << "] " << f.message
       << '\n';
  }
  if (findings.empty()) {
    os << tool << ": " << files_scanned << " files clean\n";
    return 0;
  }
  os << tool << ": " << findings.size() << " violation(s) in " << files_scanned << " files\n";
  return 1;
}

}  // namespace airch::analysis
