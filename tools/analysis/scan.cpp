#include "analysis/scan.hpp"

#include <algorithm>
#include <cctype>

namespace airch::analysis {

namespace fs = std::filesystem;

std::string strip_code(const std::string& line, StripState& st) {
  // Every skipped character is replaced with a space so the output is the
  // same length as the input: a regex match position in the stripped line
  // is the column in the raw line.
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    if (st.in_block_comment) {
      if (line[i] == '*' && i + 1 < n && line[i + 1] == '/') {
        st.in_block_comment = false;
        out.append(2, ' ');
        i += 2;
      } else {
        out.push_back(' ');
        ++i;
      }
      continue;
    }
    if (st.in_raw_string) {  // only the common R"( ... )" delimiter is used here
      if (line[i] == ')' && i + 1 < n && line[i + 1] == '"') {
        st.in_raw_string = false;
        out.append(2, ' ');
        i += 2;
      } else {
        out.push_back(' ');
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < n && line[i + 1] == '/') break;  // line comment
    if (c == '/' && i + 1 < n && line[i + 1] == '*') {
      st.in_block_comment = true;
      out.append(2, ' ');
      i += 2;
      continue;
    }
    if (c == 'R' && i + 2 < n && line[i + 1] == '"' && line[i + 2] == '(') {
      st.in_raw_string = true;
      out.append(3, ' ');
      i += 3;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(quote);  // keep a marker so tokens don't merge
      ++i;
      while (i < n) {
        if (line[i] == '\\') {
          out.append(std::min<std::size_t>(2, n - i), ' ');
          i += 2;
        } else if (line[i] == quote) {
          out.push_back(quote);
          ++i;
          break;
        } else {
          out.push_back(' ');
          ++i;
        }
      }
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

std::set<std::string> allowed_rules(const std::string& raw_line) {
  std::set<std::string> out;
  const std::string tag = "airch-lint: allow(";
  const std::size_t at = raw_line.find(tag);
  if (at == std::string::npos) return out;
  std::size_t i = at + tag.size();
  std::string cur;
  while (i < raw_line.size() && raw_line[i] != ')') {
    const char c = raw_line[i++];
    if (c == ',') {
      if (!cur.empty()) out.insert(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.insert(cur);
  return out;
}

std::vector<SourceFile> walk_sources(const fs::path& root, const std::vector<std::string>& dirs) {
  std::vector<SourceFile> out;
  for (const auto& dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext != ".cpp" && ext != ".hpp") continue;
      // Never scan generated trees (in-source build leftovers).
      if (entry.path().string().find("CMakeFiles") != std::string::npos) continue;
      SourceFile f;
      f.path = entry.path();
      f.rel = fs::relative(entry.path(), root).generic_string();
      f.top_dir = dir;
      out.push_back(std::move(f));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });
  return out;
}

}  // namespace airch::analysis
