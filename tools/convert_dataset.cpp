// CSV <-> binary dataset conversion (dataset/binary_io.hpp). Both
// directions stream, so multi-million-point files convert in flat memory.
//
//   ./convert_dataset --in=case1.csv --out=case1.bin --classes=45
//   ./convert_dataset --in=case1.bin --out=case1.csv
//
// Direction is chosen by --mode, or inferred from the --out extension
// (.bin = to-binary, anything else = to-csv). CSV carries no class count,
// so to-binary requires --classes (the output space size; every label is
// validated against it).

#include <exception>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "dataset/binary_io.hpp"

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace airch;
  ArgParser args("convert_dataset", "CSV <-> binary dataset conversion");
  args.flag_str("in", "", "input dataset path");
  args.flag_str("out", "", "output dataset path");
  args.flag_str("mode", "auto", "auto (by --out extension), to-binary, to-csv");
  args.flag_i64("classes", 0, "output-space size, required for to-binary", 0, 1 << 30);
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "convert_dataset: " << e.what() << "\n";
    return 1;
  }

  const std::string in = args.str("in");
  const std::string out = args.str("out");
  const std::string mode = args.str("mode");
  if (in.empty() || out.empty()) {
    std::cerr << "convert_dataset: --in and --out are required\n";
    return 1;
  }
  if (mode != "auto" && mode != "to-binary" && mode != "to-csv") {
    std::cerr << "convert_dataset: --mode must be auto, to-binary, or to-csv\n";
    return 1;
  }
  const bool to_binary = mode == "to-binary" || (mode == "auto" && ends_with(out, ".bin"));

  try {
    if (to_binary) {
      if (args.i64("classes") < 1) {
        std::cerr << "convert_dataset: to-binary requires --classes >= 1\n";
        return 1;
      }
      convert_csv_to_binary(in, out, static_cast<int>(args.i64("classes")));
    } else {
      convert_binary_to_csv(in, out);
    }
  } catch (const std::exception& e) {
    std::cerr << "convert_dataset: " << e.what() << "\n";
    return 1;
  }
  std::cout << "converted " << in << " -> " << out << (to_binary ? " (binary)" : " (csv)")
            << "\n";
  return 0;
}
