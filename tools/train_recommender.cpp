// Offline training: fit an AIrchitect recommender on a generated dataset
// (CSV from generate_dataset, or freshly generated) and save the model
// for constant-time inference elsewhere.
//
//   ./train_recommender --case=1 --dataset=case1.csv --out=case1.airch
//   ./train_recommender --case=1 --points=100000 --out=case1.airch

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "core/recommender.hpp"

int main(int argc, char** argv) {
  using namespace airch;
  ArgParser args("train_recommender", "train + save an AIrchitect recommender");
  args.flag_i64("case", 1, "case study: 1 = array/dataflow, 2 = buffers, 3 = scheduling");
  args.flag_str("dataset", "", "input dataset CSV (empty = generate fresh data)");
  args.flag_i64("points", 50000, "dataset size when generating fresh data");
  args.flag_i64("epochs", 15, "training epochs");
  args.flag_i64("seed", 42, "RNG seed");
  args.flag_str("out", "recommender.airch", "output model path");
  args.parse(argc, argv);

  const auto case_num = args.i64("case");
  if (case_num < 1 || case_num > 3) {
    std::cerr << "--case must be 1, 2, or 3\n";
    return 1;
  }
  const auto study = make_case_study(static_cast<CaseId>(case_num));

  Dataset data = args.str("dataset").empty()
                     ? study->generate(static_cast<std::size_t>(args.i64("points")),
                                       static_cast<std::uint64_t>(args.i64("seed")))
                     : Dataset::load_csv(args.str("dataset"), study->num_classes());
  std::cout << case_name(study->id()) << ": training on " << data.size() << " points...\n";

  // Fit via the shared pipeline path so val accuracy is honest, then wrap
  // the fitted model in a Recommender and persist it.
  Rng rng(static_cast<std::uint64_t>(args.i64("seed")) ^ 0xA5A5A5A5ULL);
  data.shuffle(rng);
  auto [train, val] = data.split(0.9);
  auto encoder = std::make_unique<FeatureEncoder>(train);
  auto model = make_airchitect(static_cast<std::uint64_t>(args.i64("seed")),
                               static_cast<int>(args.i64("epochs")));
  const auto history = model->fit(train, val, *encoder);

  AsciiTable t({"epoch", "train loss", "train acc", "val acc"});
  for (const auto& e : history) {
    t.add_row({std::to_string(e.epoch), AsciiTable::fmt(e.train_loss, 3),
               AsciiTable::fmt(100.0 * e.train_accuracy, 1) + "%",
               AsciiTable::fmt(100.0 * e.val_accuracy, 1) + "%"});
  }
  t.print(std::cout);

  Recommender rec(*study, std::move(model), std::move(encoder));
  rec.save(args.str("out"));
  std::cout << "saved model to " << args.str("out") << '\n';
  return 0;
}
