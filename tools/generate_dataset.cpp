// Offline dataset generation (the paper's Step 3): run the conventional
// simulate-and-search optimizer over sampled workloads and persist the
// (input features, optimal label) pairs for later training runs.
//
//   ./generate_dataset --case=1 --points=100000 --out=case1.csv
//   ./generate_dataset --case=2 --points=2000000 --out=case2.bin
//       --shards=8 --threads=4 --snapshot=case2.snap
//
// Multi-million-point runs lean on three things (see docs/performance.md):
//   --shards=K   splits the run into K contiguous index ranges, writes one
//                binary shard file per range, and merges them — the output
//                is byte-identical to --shards=1 at the same seed (the
//                sharding contract of dataset/generator.hpp).
//   --snapshot=P restores the labelling cache from P before generating
//                (cold start if P is missing or unusable) and saves the
//                warmed cache back to P afterwards.
//   --format     csv | binary | auto (by --out extension: .bin = binary).
//                Binary is the compact mmap-able format of
//                dataset/binary_io.hpp; convert with ./convert_dataset.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/case_study.hpp"
#include "dataset/binary_io.hpp"

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Distinct labels in a binary dataset file, streamed (the merged file may
/// be too large to materialize).
int distinct_labels_binary(const std::string& path, int num_classes) {
  airch::BatchStream stream(path);
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(num_classes), 0);
  airch::Dataset chunk;
  while (stream.next_batch(1 << 16, chunk)) {
    for (const auto& p : chunk.points()) ++hist[static_cast<std::size_t>(p.label)];
  }
  int distinct = 0;
  for (const auto h : hist) {
    if (h > 0) ++distinct;
  }
  return distinct;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace airch;
  ArgParser args("generate_dataset", "search-labelled dataset generation");
  // Ranges are enforced by the parser itself: out-of-range values fail in
  // parse() with the allowed interval in the message, before any work runs.
  args.flag_i64("case", 1, "case study: 1 = array/dataflow, 2 = buffers, 3 = scheduling", 1, 3);
  args.flag_i64("points", 100000, "number of datapoints", 1, 100000000);
  args.flag_i64("seed", 42, "RNG seed");
  args.flag_str("out", "dataset.csv", "output path (CSV or binary, see --format)");
  args.flag_str("format", "auto", "output format: auto (by extension), csv, binary");
  args.flag_i64("threads", 0, "labelling worker threads (0 = hardware default)", 0, 1024);
  args.flag_i64("shards", 1, "generate in this many contiguous shards, then merge", 1, 256);
  args.flag_str("snapshot", "", "labelling-cache snapshot path (load before, save after)");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "generate_dataset: " << e.what() << "\n";
    return 1;
  }

  const std::string format = args.str("format");
  if (format != "auto" && format != "csv" && format != "binary") {
    std::cerr << "generate_dataset: --format must be auto, csv, or binary\n";
    return 1;
  }
  const std::string out = args.str("out");
  const bool binary_out = format == "binary" || (format == "auto" && ends_with(out, ".bin"));

  // The worker pool sizes itself from AIRCH_THREADS (common/parallel.hpp);
  // --threads just pins it for this process before any pool spins up.
  if (args.i64("threads") > 0) {
    setenv("AIRCH_THREADS", std::to_string(args.i64("threads")).c_str(), 1);
  }

  const auto study = make_case_study(static_cast<CaseId>(args.i64("case")));
  const auto points = static_cast<std::size_t>(args.i64("points"));
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));
  const auto shards = static_cast<std::size_t>(args.i64("shards"));
  const std::string snapshot = args.str("snapshot");

  std::cout << case_name(study->id()) << ": generating " << points
            << " points (output space: " << study->num_classes() << " labels)...\n";

  if (!snapshot.empty()) {
    // A missing or stale snapshot is an expected cold start, not an error:
    // the file may not exist yet, or may belong to another case / space
    // shape / format version. Anything loadable must load fully, though —
    // load_snapshot validates everything before touching the cache.
    try {
      const SnapshotStats loaded = study->load_cache_snapshot(snapshot);
      std::cout << "snapshot: restored " << loaded.entries << " entries from " << snapshot
                << "\n";
    } catch (const std::exception& e) {
      std::cout << "snapshot: starting cold (" << e.what() << ")\n";
    }
  }

  std::size_t written = 0;
  int distinct = 0;
  if (shards == 1) {
    const Dataset ds = study->generate(points, seed);
    if (binary_out) {
      write_binary_dataset(ds, out);
    } else {
      ds.save_csv(out);
    }
    written = ds.size();
    for (const auto h : ds.label_histogram()) {
      if (h > 0) ++distinct;
    }
  } else {
    // Contiguous index ranges, one binary shard file each, merged in shard
    // order — byte-identical to the single-shard run (generator.hpp's
    // sharding contract). Shards run sequentially here; each one already
    // labels on the full worker pool, and all shards share the study's
    // cache, so later shards run warmer than earlier ones.
    std::vector<std::string> shard_paths;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = points * s / shards;
      const std::size_t end = points * (s + 1) / shards;
      const Dataset ds = study->generate_range(begin, end, seed);
      shard_paths.push_back(out + ".shard" + std::to_string(s));
      write_binary_dataset(ds, shard_paths.back());
      written += ds.size();
    }
    const std::string merged = binary_out ? out : out + ".merged.bin";
    merge_binary_shards(shard_paths, merged);
    for (const std::string& p : shard_paths) std::remove(p.c_str());
    distinct = distinct_labels_binary(merged, study->num_classes());
    if (!binary_out) {
      convert_binary_to_csv(merged, out);
      std::remove(merged.c_str());
    }
  }

  if (!snapshot.empty()) {
    const SnapshotStats saved = study->save_cache_snapshot(snapshot);
    const CacheStats cs = study->cache_stats();
    std::cout << "snapshot: saved " << saved.entries << " entries to " << snapshot
              << " (cache: " << cs.hits << " hits, " << cs.misses << " misses)\n";
  }

  std::cout << "wrote " << written << " points to " << out << " (" << distinct
            << " distinct optimal labels observed)\n";
  return 0;
}
