// Offline dataset generation (the paper's Step 3): run the conventional
// simulate-and-search optimizer over sampled workloads and persist the
// (input features, optimal label) pairs as CSV for later training runs.
//
//   ./generate_dataset --case=1 --points=100000 --out=case1.csv

#include <exception>
#include <iostream>

#include "common/cli.hpp"
#include "core/case_study.hpp"

int main(int argc, char** argv) {
  using namespace airch;
  ArgParser args("generate_dataset", "search-labelled dataset generation");
  // Ranges are enforced by the parser itself: out-of-range values fail in
  // parse() with the allowed interval in the message, before any work runs.
  args.flag_i64("case", 1, "case study: 1 = array/dataflow, 2 = buffers, 3 = scheduling", 1, 3);
  args.flag_i64("points", 100000, "number of datapoints", 1, 100000000);
  args.flag_i64("seed", 42, "RNG seed");
  args.flag_str("out", "dataset.csv", "output CSV path");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "generate_dataset: " << e.what() << "\n";
    return 1;
  }

  const auto study = make_case_study(static_cast<CaseId>(args.i64("case")));
  std::cout << case_name(study->id()) << ": generating " << args.i64("points")
            << " points (output space: " << study->num_classes() << " labels)...\n";
  const Dataset ds = study->generate(static_cast<std::size_t>(args.i64("points")),
                                     static_cast<std::uint64_t>(args.i64("seed")));
  ds.save_csv(args.str("out"));

  const auto hist = ds.label_histogram();
  int distinct = 0;
  for (auto h : hist) {
    if (h > 0) ++distinct;
  }
  std::cout << "wrote " << ds.size() << " points to " << args.str("out") << " (" << distinct
            << " distinct optimal labels observed)\n";
  return 0;
}
